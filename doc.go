// Package repro is a from-scratch Go reproduction of "Energy-Aware Routing
// for E-Textile Applications" (Kao and Marculescu, DATE 2005).
//
// The implementation lives under internal/ (see DESIGN.md for the full system
// inventory); command-line tools live under cmd/, runnable examples under
// examples/, and the benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation section (documented in EXPERIMENTS.md).
package repro
