// Command etopt searches for an optimized module→node placement of a
// registered scenario. Where the paper fixes the mapping up front (the
// Sec 5.2 checkerboard) and quotes Theorem 1 as an unreachable yardstick,
// etopt treats the placement as a decision variable: a deterministic
// metaheuristic search — greedy hill-climb, simulated annealing or plain
// multi-restart — walks the space of explicit assignments, scoring candidates
// with the chosen objective, and prints the winning placement in a form every
// other tool replays (`etsim -mapping explicit:...`, scenario.Spec
// Assignment).
//
// Examples:
//
//	etopt -scenario paper-default                          # hill-climb, sim objective
//	etopt -scenario paper-default -strategy anneal -budget 200 -restarts 4 -workers 4
//	etopt -scenario paper-default -objective analytic -budget 2000
//	etopt -scenario degraded-fabric-mc -objective campaign -replications 10
//	etopt -scenario paper-default -emit-spec               # print a registerable spec
//
// The search is deterministic: the report — including the winning placement
// and its hash — is a pure function of (-scenario, -objective, -strategy,
// -budget, -restarts, -seed), byte-identical at every -workers count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/optimize"
	"repro/internal/scenario"
	"repro/internal/stats"
)

func main() {
	var (
		scenarioName  = flag.String("scenario", "paper-default", "registered scenario whose placement to optimize (see -list-scenarios)")
		listScenarios = flag.Bool("list-scenarios", false, "list the registered scenarios and exit")
		objectiveName = flag.String("objective", "sim", "candidate score: sim (one simulation, completed jobs), analytic (Theorem-1 surrogate) or campaign (replicated mean over re-drawn seeds)")
		strategyName  = flag.String("strategy", "climb", "search strategy: climb (greedy hill-climb), anneal (simulated annealing) or restart (multi-restart hill-climb from random placements)")
		budget        = flag.Int("budget", 100, "objective evaluations per restart (cache hits are free)")
		restarts      = flag.Int("restarts", 4, "independent restarts; restart 0 starts from the scenario's own mapping, the rest from random placements")
		seed          = flag.Uint64("seed", 1, "base seed; every restart, move and random start is an index-addressed function of it")
		workers       = flag.Int("workers", 0, "restarts searched concurrently (0 = one per CPU, 1 = serial); never changes the result")
		replications  = flag.Int("replications", 10, "replicates per evaluation for -objective campaign")
		asCSV         = flag.Bool("csv", false, "emit the summary and trace tables as CSV")
		emitSpec      = flag.Bool("emit-spec", false, "print the winning placement as a registerable scenario.Spec literal and exit")
	)
	flag.Parse()

	if *listScenarios {
		fmt.Print(scenario.Table().Render())
		return
	}
	spec, ok := scenario.Lookup(*scenarioName)
	if !ok {
		fatal(fmt.Errorf("unknown scenario %q; -list-scenarios shows the %d registered ones",
			*scenarioName, len(scenario.Names())))
	}

	var objective optimize.Objective
	switch *objectiveName {
	case "sim":
		objective = optimize.Sim{Base: spec}
	case "analytic":
		obj, err := optimize.NewAnalytic(spec)
		if err != nil {
			fatal(err)
		}
		objective = obj
	case "campaign":
		objective = optimize.Campaign{Base: spec, Replications: *replications, Seed: *seed}
	default:
		fatal(fmt.Errorf("unknown objective %q (want sim, analytic or campaign)", *objectiveName))
	}

	var opt optimize.Optimizer
	switch *strategyName {
	case "climb":
		opt = optimize.MultiRestart{Inner: optimize.HillClimb{}, Restarts: *restarts, Workers: *workers}
	case "anneal":
		opt = optimize.MultiRestart{Inner: optimize.Anneal{}, Restarts: *restarts, Workers: *workers}
	case "restart":
		opt = optimize.MultiRestart{Restarts: *restarts, Workers: *workers, RandomStarts: true}
	default:
		fatal(fmt.Errorf("unknown strategy %q (want climb, anneal or restart)", *strategyName))
	}

	rpt, err := opt.Optimize(optimize.Problem{
		Spec:      spec,
		Objective: objective,
		Budget:    *budget,
		Seed:      *seed,
	})
	if err != nil {
		fatal(err)
	}

	if *emitSpec {
		emitSpecLiteral(spec, rpt)
		return
	}

	emit := func(t *stats.Table) {
		if *asCSV {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	emit(rpt.SummaryTable())
	emit(rpt.TraceTable())
	if !*asCSV {
		fmt.Printf("best so far  %s\n\n", stats.Sparkline(rpt.BestSoFar(), 60))
		printPlacementGrid(spec, rpt)
	}

	fmt.Printf("winner: restart %d, score %s (start %s, %.2fx), %d evals + %d cache hits\n",
		rpt.BestRestart, stats.Format(rpt.BestScore), stats.Format(rpt.StartScore), rpt.Gain(), rpt.Evals, rpt.CacheHits)
	printBoundGap(spec, rpt)
	fmt.Printf("assignment: %s\n", rpt.BestAssignment())
	fmt.Printf("winner hash: %016x\n", rpt.WinnerHash())
	fmt.Printf("replay: etsim -scenario %s -mapping explicit:%s\n", spec.Name, rpt.BestAssignment())
}

// printBoundGap quotes the winner against the Theorem-1 bound J* when the
// objective's score is a job count (sim/campaign) or job-count surrogate
// (analytic) — which is every objective this CLI builds.
func printBoundGap(spec scenario.Spec, rpt *optimize.Report) {
	s, err := spec.Strategy()
	if err != nil {
		return
	}
	bound, err := s.UpperBound()
	if err != nil {
		return
	}
	fmt.Printf("gap to J*: score %s vs bound %.2f (%.1f%% achieved)\n",
		stats.Format(rpt.BestScore), bound.Jobs, 100*rpt.BestScore/bound.Jobs)
}

// printPlacementGrid draws the winning placement in mesh coordinates, one
// module digit per node — the searched counterpart of the paper's Fig 3(b)
// checkerboard diagram.
func printPlacementGrid(spec scenario.Spec, rpt *optimize.Report) {
	s, err := spec.Strategy()
	if err != nil {
		return
	}
	fmt.Printf("placement (%s, module per node):\n", spec.Label())
	nodes := s.Mesh.Graph.Nodes()
	maxY := 0
	for _, n := range nodes {
		if n.Pos.Y > maxY {
			maxY = n.Pos.Y
		}
	}
	rows := make(map[int][]string, maxY)
	for _, n := range nodes {
		rows[n.Pos.Y] = append(rows[n.Pos.Y], fmt.Sprintf("%d", rpt.Best.ModuleAt(int(n.ID))))
	}
	for y := 1; y <= maxY; y++ {
		fmt.Print("  ")
		for _, cell := range rows[y] {
			fmt.Printf("%s ", cell)
		}
		fmt.Println()
	}
	fmt.Println()
}

// emitSpecLiteral prints the winner as a ready-to-register scenario.Spec:
// the base scenario with its mapping fields replaced by the searched
// placement. Every non-default field of the base spec is carried over — the
// emitted scenario must reproduce exactly the configuration the placement
// was optimized for (fault pattern, controllers, offered load, ...), or the
// replayed score would silently diverge from the search's.
func emitSpecLiteral(spec scenario.Spec, rpt *optimize.Report) {
	fmt.Printf("scenario.Spec{\n")
	fmt.Printf("\tName:        %q,\n", spec.Name+"-optimized")
	fmt.Printf("\tDescription: \"optimized placement of %s (score %s, seed %d)\",\n",
		spec.Name, stats.Format(rpt.BestScore), rpt.Seed)
	fmt.Printf("\tMesh:        %d,\n", spec.Mesh)
	if spec.Algorithm != "" {
		fmt.Printf("\tAlgorithm:   %q,\n", spec.Algorithm)
	}
	if spec.EARQ != 0 {
		fmt.Printf("\tEARQ:        %g,\n", spec.EARQ)
	}
	if spec.BatteryLevels != 0 {
		fmt.Printf("\tBatteryLevels: %d,\n", spec.BatteryLevels)
	}
	if spec.Battery != "" {
		fmt.Printf("\tBattery:     %q,\n", spec.Battery)
	}
	fmt.Printf("\tMapping:     scenario.MappingExplicit,\n")
	fmt.Printf("\tAssignment:  %q,\n", rpt.BestAssignment())
	if spec.Controllers != 0 {
		fmt.Printf("\tControllers: %d,\n", spec.Controllers)
	}
	if spec.FiniteControllers {
		fmt.Printf("\tFiniteControllers: true,\n")
	}
	if spec.ConcurrentJobs != 0 {
		fmt.Printf("\tConcurrentJobs: %d,\n", spec.ConcurrentJobs)
	}
	if spec.FailedLinkFraction != 0 {
		fmt.Printf("\tFailedLinkFraction: %g,\n", spec.FailedLinkFraction)
		fmt.Printf("\tFailedLinkSeed:     %d,\n", spec.FailedLinkSeed)
	}
	if spec.VerifyPayload {
		fmt.Printf("\tVerifyPayload: true,\n")
	}
	if spec.CollectNodeStats {
		fmt.Printf("\tCollectNodeStats: true,\n")
	}
	if spec.MaxCycles != 0 {
		fmt.Printf("\tMaxCycles:   %d,\n", spec.MaxCycles)
	}
	fmt.Printf("}\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etopt:", err)
	os.Exit(1)
}
