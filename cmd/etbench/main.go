// Command etbench regenerates every table and figure of the paper's
// evaluation section, plus the additional ablation studies documented in
// DESIGN.md, and prints them as plain-text tables (and optional CSV).
//
// Examples:
//
//	etbench                         # run everything on the paper's mesh sizes
//	etbench -experiment fig7        # only the EAR-vs-SDR comparison
//	etbench -sizes 4,5,6 -csv       # smaller sweep, CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"which experiment to run: fig2, fig7, table2, fig8, fig7-mc, fig8-mc, fig8-sharded, degradation, opt-gap, scaling, ablation-q, ablation-mapping, ablation-battery, ablation-concurrency, ablation-links or all")
		sizesFlag     = flag.String("sizes", "4,5,6,7,8", "comma-separated square mesh sizes")
		ctrlFlag      = flag.String("controllers", "1,2,4,7,10", "comma-separated controller counts for fig8")
		shardsFlag    = flag.String("shards", "", "comma-separated shard counts for fig8-sharded (1 = centralized baseline; default 1,2,4)")
		stalenessFlag = flag.String("staleness", "", "comma-separated summary-exchange periods in frames for fig8-sharded (default 1,8,32)")
		shardCtrlFlag = flag.String("shard-controllers", "", "comma-separated per-pool controller counts for fig8-sharded (0 = one infinite-energy controller; default 0,2)")
		ratesFlag     = flag.String("fault-rates", "", "comma-separated per-frame fault rates for degradation (0 = fault-free baseline; default 0,0.02,0.05,0.1)")
		recoveryFlag  = flag.String("recovery-frames", "", "comma-separated fault recovery windows in frames for degradation (default 4,16)")
		asCSV         = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		workers       = flag.Int("workers", 0, "worker goroutines per sweep (0 = one per CPU, 1 = serial)")
		charts        = flag.Bool("charts", false, "also render ASCII charts for the figures")
		replications  = flag.Int("replications", 30, "replicates per cell for the Monte-Carlo sweeps (fig7-mc, fig8-mc)")
		seed          = flag.Uint64("seed", 1, "base seed for the Monte-Carlo sweeps and the placement search")
		budget        = flag.Int("budget", 60, "simulations per search restart for opt-gap")
		restarts      = flag.Int("restarts", 4, "independent search restarts per opt-gap cell")
		crossings     = flag.Int("crossings", experiments.DefaultScalingCrossings, "battery-level crossings measured per mesh size for scaling")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile    = flag.String("memprofile", "", "write a heap profile taken after the experiments to this file")
		spansFile     = flag.String("spans", "", "record every sweep cell in the flight recorder and write Chrome trace-event JSON to this file (one lane per worker; open in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	sizesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sizes" {
			sizesSet = true
		}
	})

	// Both profiles are written through deferred calls, so they cover
	// successful runs only: fatal exits through os.Exit, which skips defers.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "etbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "etbench:", err)
			}
		}()
	}

	sizes, err := cli.ParseInts(*sizesFlag, "mesh size")
	if err != nil {
		fatal(err)
	}
	controllers, err := cli.ParseInts(*ctrlFlag, "controller count")
	if err != nil {
		fatal(err)
	}

	shardCounts := experiments.DefaultShardCounts()
	if *shardsFlag != "" {
		if shardCounts, err = cli.ParseInts(*shardsFlag, "shard count"); err != nil {
			fatal(err)
		}
	}
	stalenessBounds := experiments.DefaultStalenessBounds()
	if *stalenessFlag != "" {
		if stalenessBounds, err = cli.ParseInts(*stalenessFlag, "staleness bound"); err != nil {
			fatal(err)
		}
	}
	shardControllers := experiments.DefaultShardedControllerCounts()
	if *shardCtrlFlag != "" {
		if shardControllers, err = cli.ParseInts(*shardCtrlFlag, "per-pool controller count"); err != nil {
			fatal(err)
		}
	}
	faultRates := experiments.DefaultFaultRates()
	if *ratesFlag != "" {
		if faultRates, err = cli.ParseFloats(*ratesFlag, "fault rate"); err != nil {
			fatal(err)
		}
	}
	recoveryFrames := experiments.DefaultRecoveryFrames()
	if *recoveryFlag != "" {
		if recoveryFrames, err = cli.ParseInts(*recoveryFlag, "recovery window"); err != nil {
			fatal(err)
		}
	}

	parallelism := experiments.WithWorkers(*workers)
	var spanLog *trace.Spans
	if *spansFile != "" {
		// Cell spans are observational only: the sweep tables are
		// byte-identical with recording on or off (the determinism guards
		// diff them at multiple worker counts).
		spanLog = &trace.Spans{}
		parallelism = experiments.Options(parallelism, experiments.WithSpans(spanLog))
	}

	selected := strings.Split(*experiment, ",")
	// The Monte-Carlo sweeps multiply every cell by -replications, so they
	// are opt-in: named explicitly, never part of "all".
	wantExplicit := func(name string) bool { return slices.Contains(selected, name) }
	want := func(name string) bool {
		return slices.Contains(selected, "all") || wantExplicit(name)
	}
	emit := func(t *stats.Table) {
		if *asCSV {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	ran := 0

	if want("fig2") {
		points := experiments.Fig2(20)
		emit(experiments.Fig2Table(points))
		ran++
	}
	if want("fig7") {
		rows, err := experiments.Fig7(sizes, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Fig7Table(rows))
		if *charts {
			fmt.Println(experiments.Fig7Chart(rows).Render(60))
		}
		ran++
	}
	if want("table2") {
		rows, err := experiments.Table2(sizes, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Table2Table(rows))
		ran++
	}
	if want("fig8") {
		rows, err := experiments.Fig8(sizes, controllers, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Fig8Table(rows, controllers))
		if *charts {
			fmt.Println(experiments.Fig8Chart(rows, controllers).Render(60))
		}
		ran++
	}
	if wantExplicit("fig7-mc") {
		rows, err := experiments.Fig7MC(sizes, *replications, *seed, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Fig7MCTable(rows))
		if *charts {
			fmt.Println(experiments.Fig7MCChart(rows).Render(60))
		}
		ran++
	}
	if wantExplicit("fig8-mc") {
		rows, err := experiments.Fig8MC(sizes, controllers, *replications, *seed, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Fig8MCTable(rows))
		if *charts {
			fmt.Println(experiments.Fig8MCChart(rows, controllers).Render(60))
		}
		ran++
	}
	// The sharded grid multiplies every mesh size by the controller, shard and
	// staleness axes, so it is opt-in like the Monte-Carlo sweeps.
	if wantExplicit("fig8-sharded") {
		rows, err := experiments.Fig8Sharded(sizes, shardControllers, shardCounts, stalenessBounds, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Fig8ShardedTable(rows))
		if *charts {
			fmt.Println(experiments.Fig8ShardedChart(rows).Render(60))
		}
		ran++
	}
	// The degradation study multiplies its mesh axis by the algorithm,
	// fault-rate and recovery axes, so it is opt-in like the sharded grid; it
	// runs on its own small default mesh unless -sizes was set explicitly.
	if wantExplicit("degradation") {
		degradationSizes := experiments.DefaultDegradationSizes()
		if sizesSet {
			degradationSizes = sizes
		}
		rows, err := experiments.Degradation(degradationSizes, faultRates, recoveryFrames, *seed, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.DegradationTable(rows))
		if *charts {
			fmt.Println(experiments.DegradationChart(rows).Render(60))
		}
		ran++
	}
	// The scaling study times big-mesh recomputes serially (minutes at the
	// 64x64 point), so it is opt-in like the Monte-Carlo sweeps; it also
	// ignores -sizes' paper-oriented default in favour of its own axis
	// unless -sizes was set explicitly.
	if wantExplicit("scaling") {
		scalingSizes := experiments.DefaultScalingSizes()
		if sizesSet {
			scalingSizes = sizes
		}
		rows, err := experiments.Scaling(scalingSizes, *crossings)
		if err != nil {
			fatal(err)
		}
		emit(experiments.ScalingTable(rows))
		ran++
	}
	if wantExplicit("opt-gap") {
		rows, err := experiments.OptGap(sizes, *budget, *restarts, *seed, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.OptGapTable(rows))
		if *charts {
			fmt.Println(experiments.OptGapChart(rows).Render(60))
		}
		ran++
	}
	if want("ablation-q") {
		rows, err := experiments.AblationEARWeight(sizes, []float64{1, 1.5, 2, 3, 4}, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationQTable(rows))
		ran++
	}
	if want("ablation-mapping") {
		rows, err := experiments.AblationMapping(sizes, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationMappingTable(rows))
		ran++
	}
	if want("ablation-battery") {
		rows, err := experiments.AblationBattery(sizes, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationBatteryTable(rows))
		ran++
	}
	if want("ablation-concurrency") {
		rows, err := experiments.AblationConcurrency(sizes, []int{1, 2, 3, 4}, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationConcurrencyTable(rows))
		ran++
	}
	if want("ablation-links") {
		rows, err := experiments.AblationLinkFailures(sizes, []float64{0, 0.1, 0.2, 0.3}, parallelism)
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationLinkTable(rows))
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown experiment %q", *experiment))
	}
	if spanLog != nil {
		if err := spanLog.WriteFile(*spansFile); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "spans: %d cells recorded, written to %s\n", spanLog.Len(), *spansFile)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etbench:", err)
	os.Exit(1)
}
