// Command etbench regenerates every table and figure of the paper's
// evaluation section, plus the additional ablation studies documented in
// DESIGN.md, and prints them as plain-text tables (and optional CSV).
//
// Examples:
//
//	etbench                         # run everything on the paper's mesh sizes
//	etbench -experiment fig7        # only the EAR-vs-SDR comparison
//	etbench -sizes 4,5,6 -csv       # smaller sweep, CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"which experiment to run: fig2, fig7, table2, fig8, ablation-q, ablation-mapping, ablation-battery, ablation-concurrency, ablation-links or all")
		sizesFlag = flag.String("sizes", "4,5,6,7,8", "comma-separated square mesh sizes")
		ctrlFlag  = flag.String("controllers", "1,2,4,7,10", "comma-separated controller counts for fig8")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		charts    = flag.Bool("charts", false, "also render ASCII charts for the figures")
	)
	flag.Parse()

	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		fatal(err)
	}
	controllers, err := parseInts(*ctrlFlag)
	if err != nil {
		fatal(err)
	}

	selected := strings.Split(*experiment, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}
	emit := func(t *stats.Table) {
		if *asCSV {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	ran := 0

	if want("fig2") {
		points := experiments.Fig2(20)
		emit(experiments.Fig2Table(points))
		ran++
	}
	if want("fig7") {
		rows, err := experiments.Fig7(sizes)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Fig7Table(rows))
		if *charts {
			fmt.Println(experiments.Fig7Chart(rows).Render(60))
		}
		ran++
	}
	if want("table2") {
		rows, err := experiments.Table2(sizes)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Table2Table(rows))
		ran++
	}
	if want("fig8") {
		rows, err := experiments.Fig8(sizes, controllers)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Fig8Table(rows, controllers))
		if *charts {
			fmt.Println(experiments.Fig8Chart(rows, controllers).Render(60))
		}
		ran++
	}
	if want("ablation-q") {
		rows, err := experiments.AblationEARWeight(sizes, []float64{1, 1.5, 2, 3, 4})
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationQTable(rows))
		ran++
	}
	if want("ablation-mapping") {
		rows, err := experiments.AblationMapping(sizes)
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationMappingTable(rows))
		ran++
	}
	if want("ablation-battery") {
		rows, err := experiments.AblationBattery(sizes)
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationBatteryTable(rows))
		ran++
	}
	if want("ablation-concurrency") {
		rows, err := experiments.AblationConcurrency(sizes, []int{1, 2, 3, 4})
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationConcurrencyTable(rows))
		ran++
	}
	if want("ablation-links") {
		rows, err := experiments.AblationLinkFailures(sizes, []float64{0, 0.1, 0.2, 0.3})
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationLinkTable(rows))
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown experiment %q", *experiment))
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", csv)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etbench:", err)
	os.Exit(1)
}
