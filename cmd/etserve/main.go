// Command etserve runs the e-textile simulator as a long-lived HTTP service:
// clients POST canonical scenario or campaign specs and receive memoized
// results from a content-addressed cache (see internal/serve). Identical
// submissions — concurrent or repeated, across restarts with -cache-dir —
// cost one simulation.
//
// Endpoints:
//
//	GET  /healthz          liveness probe
//	GET  /scenarios        machine-readable registry of named scenarios
//	GET  /stats            cache and admission-queue counters
//	POST /simulate         scenario spec JSON -> sim result JSON (cached)
//	POST /campaign         campaign spec JSON -> aggregate summary (cached)
//	POST /simulate/stream  scenario spec JSON -> NDJSON progress + result
//
// Examples:
//
//	etserve -addr :8321 -cache-dir /var/cache/etserve
//	curl -s localhost:8321/scenarios | jq '.[].name'
//	curl -s -XPOST localhost:8321/simulate -d '{"Mesh":5}'
//	etserve -loadtest            # self-contained benchmark -> BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8321", "listen address")
		workers     = flag.Int("workers", 0, "concurrent simulations admitted (0 = one per CPU)")
		cacheBudget = flag.Int64("cache-budget", 0, "in-memory result cache budget in bytes (0 = default)")
		cacheDir    = flag.String("cache-dir", "", "directory for the disk cache layer (empty = memory only)")
		loadtest    = flag.Bool("loadtest", false, "run the self-contained load test instead of serving, then exit")
		ltRequests  = flag.Int("loadtest-requests", 2000, "total submissions for -loadtest")
		ltClients   = flag.Int("loadtest-clients", 1000, "concurrent clients for -loadtest")
		ltOut       = flag.String("loadtest-out", "BENCH_serve.json", "output file for the -loadtest report")
	)
	flag.Parse()

	cfg := serve.Config{Workers: *workers, CacheBudget: *cacheBudget, CacheDir: *cacheDir}
	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}

	if *loadtest {
		if err := runLoadTest(srv, *ltRequests, *ltClients, *ltOut); err != nil {
			fatal(err)
		}
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdown, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdown)
	}()
	fmt.Fprintf(os.Stderr, "etserve: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// loadReport is the schema of BENCH_serve.json.
type loadReport struct {
	Requests    int     `json:"requests"`
	Clients     int     `json:"clients"`
	Errors      int     `json:"errors"`
	DurationMS  float64 `json:"duration_ms"`
	Throughput  float64 `json:"throughput_rps"`
	LatencyMS   latency `json:"latency_ms"`
	Cache       counts  `json:"cache"`
	ServerStats any     `json:"server_stats"`
}

type latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

type counts struct {
	Hit     int     `json:"hit"`
	Join    int     `json:"join"`
	Miss    int     `json:"miss"`
	HitRate float64 `json:"hit_rate"`
}

// runLoadTest hammers an in-process instance of the service with a small set
// of distinct specs from many concurrent clients and reports latency
// percentiles and the cache hit rate. The spec set is deliberately tiny
// relative to the request count: a result service's steady state is mostly
// repeats, and the interesting numbers are the cost of a hit and how well
// the flight group collapses the initial thundering herd.
func runLoadTest(srv *serve.Server, requests, clients int, outPath string) error {
	if requests < 1 || clients < 1 {
		return fmt.Errorf("loadtest: requests and clients must be >= 1")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// Eight distinct cells from the paper's small-mesh regime.
	var specs []string
	for _, mesh := range []int{4, 5} {
		for _, alg := range []string{"EAR", "SDR"} {
			for _, jobs := range []int{1, 2} {
				specs = append(specs,
					fmt.Sprintf(`{"Mesh":%d,"Algorithm":%q,"ConcurrentJobs":%d}`, mesh, alg, jobs))
			}
		}
	}

	transport := &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}

	var (
		next      atomic.Int64
		errs      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		cacheTal  = map[string]int{}
		start     = make(chan struct{})
		wg        sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				spec := specs[i%len(specs)]
				t0 := time.Now()
				resp, err := client.Post(base+"/simulate", "application/json", strings.NewReader(spec))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				el := time.Since(t0)
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				mu.Lock()
				latencies = append(latencies, el)
				cacheTal[resp.Header.Get(serve.HeaderCache)]++
				mu.Unlock()
			}
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)

	if len(latencies) == 0 {
		return fmt.Errorf("loadtest: every request failed")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	ok := len(latencies)
	hits, joins, misses := cacheTal["hit"], cacheTal["join"], cacheTal["miss"]
	report := loadReport{
		Requests:   requests,
		Clients:    clients,
		Errors:     int(errs.Load()),
		DurationMS: float64(wall) / float64(time.Millisecond),
		Throughput: float64(ok) / wall.Seconds(),
		LatencyMS: latency{
			P50:  pct(0.50),
			P90:  pct(0.90),
			P99:  pct(0.99),
			Max:  float64(latencies[ok-1]) / float64(time.Millisecond),
			Mean: float64(sum) / float64(ok) / float64(time.Millisecond),
		},
		Cache: counts{
			Hit:     hits,
			Join:    joins,
			Miss:    misses,
			HitRate: float64(hits+joins) / float64(ok),
		},
		ServerStats: srv.Store().Stats(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadtest: %d requests, %d clients: p50 %.2fms p99 %.2fms, hit rate %.1f%%, %d errors -> %s\n",
		requests, clients, report.LatencyMS.P50, report.LatencyMS.P99,
		100*report.Cache.HitRate, report.Errors, outPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etserve:", err)
	os.Exit(1)
}
