// Command etanalyze evaluates the Theorem-1 analytical upper bound (Eq 2) and
// the optimal module duplicate counts (Eq 3) for an application on a mesh,
// without running any simulation. By default it analyses the paper's AES-128
// application; custom applications can be described with the -modules flag.
//
// Examples:
//
//	etanalyze -mesh 4                          # Table 2's J* for the 4x4 mesh
//	etanalyze -mesh 4,5,6,7,8                  # the whole Table 2 column, analysed in parallel
//	etanalyze -mesh 8 -battery 60000
//	etanalyze -mesh 6 -modules "10:120.1,9:73.34,11:176.55" -packet 261
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analytic"
	"repro/internal/app"
	"repro/internal/battery"
	"repro/internal/cli"
	"repro/internal/energy"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	var (
		meshSizes  = flag.String("mesh", "4", "square mesh size(s), comma-separated (node budget K = mesh^2 each)")
		batteryPJ  = flag.Float64("battery", battery.DefaultNominalPJ, "battery budget B per node in pJ")
		spacing    = flag.Float64("spacing", topology.DefaultSpacingCM, "inter-node wire length in cm")
		packetBits = flag.Int("packet", app.DefaultPacketBits, "packet size in bits")
		modules    = flag.String("modules", "", "custom application as comma-separated f:E pairs, e.g. \"10:120.1,9:73.34,11:176.55\"")
		workers    = flag.Int("workers", 0, "worker goroutines for multi-mesh analyses (0 = one per CPU)")
	)
	flag.Parse()

	sizes, err := cli.ParseInts(*meshSizes, "mesh size")
	if err != nil {
		fatal(err)
	}
	application, err := buildApplication(*modules, *packetBits)
	if err != nil {
		fatal(err)
	}
	line := energy.PaperTransmissionLine()

	// Analyse every requested mesh in parallel, then print the reports in
	// input order: the pool preserves it.
	pool := runner.New(runner.WithWorkers(*workers))
	reports, err := runner.Map(pool, sizes, func(_ int, n int) (string, error) {
		return analyseMesh(application, line, *spacing, *batteryPJ, n)
	})
	if err != nil {
		fatal(err)
	}
	for i, report := range reports {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(report)
	}
}

// analyseMesh renders the full Theorem-1 report for one mesh size.
func analyseMesh(application *app.Application, line *energy.TransmissionLine, spacing, batteryPJ float64, meshSize int) (string, error) {
	k := meshSize * meshSize
	bound, err := analytic.MeshUpperBound(application, line, spacing, batteryPJ, k)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Application %s on a %dx%d mesh (K = %d nodes, B = %g pJ per battery)\n\n",
		application.Name, meshSize, meshSize, k, batteryPJ)
	t := stats.NewTable("Per-module analysis (Theorem 1)",
		"module", "f_i", "E_i [pJ]", "c_i [pJ]", "H_i [pJ]", "optimal duplicates n_i*")
	c := analytic.CommunicationEnergyPerOp(application, line, spacing)
	for i, m := range application.Modules {
		t.AddRow(fmt.Sprintf("%d (%s)", m.ID, m.Name), m.OpsPerJob, m.EnergyPerOpPJ,
			fmt.Sprintf("%.2f", c),
			fmt.Sprintf("%.2f", bound.NormalizedEnergies[i]),
			fmt.Sprintf("%.2f", bound.OptimalDuplicates[i]))
	}
	fmt.Fprintln(&sb, t.Render())
	fmt.Fprintf(&sb, "Total normalized energy per job: %.2f pJ\n", bound.TotalNormalizedEnergy())
	fmt.Fprintf(&sb, "Upper bound J* on completed jobs: %.2f (at most %d whole jobs)\n",
		bound.Jobs, bound.CompletedJobsLimit())
	return sb.String(), nil
}

func buildApplication(spec string, packetBits int) (*app.Application, error) {
	if spec == "" {
		a := app.AES128()
		a.PacketBits = packetBits
		return a, nil
	}
	b := app.NewBuilder("custom").PacketBits(packetBits)
	var flows []struct {
		id  app.ModuleID
		ops int
	}
	for i, part := range strings.Split(spec, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("module %d: want f:E, got %q", i+1, part)
		}
		ops, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("module %d: bad operation count %q", i+1, fields[0])
		}
		e, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("module %d: bad energy %q", i+1, fields[1])
		}
		id := b.AddModule(fmt.Sprintf("module-%d", i+1), e)
		flows = append(flows, struct {
			id  app.ModuleID
			ops int
		}{id, ops})
	}
	// Interleave the operations round-robin so the flow is a valid sequence.
	remaining := true
	for round := 0; remaining; round++ {
		remaining = false
		for _, f := range flows {
			if round < f.ops {
				b.Step(f.id)
				remaining = remaining || round+1 < f.ops
			}
		}
	}
	return b.Build()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etanalyze:", err)
	os.Exit(1)
}
