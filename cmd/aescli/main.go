// Command aescli encrypts or decrypts data with the library's from-scratch
// AES implementation — the same module operations that et_sim distributes
// across the e-textile mesh. It exists to demonstrate and sanity-check the
// cipher substrate; it uses ECB block chaining and therefore must not be used
// to protect real data.
//
// Examples:
//
//	echo -n "00112233445566778899aabbccddeeff" | aescli -key 000102030405060708090a0b0c0d0e0f -mode encrypt
//	aescli -key 000102030405060708090a0b0c0d0e0f -mode decrypt -in 69c4e0d86a7b0430d8cdb78070b4c55a
//	aescli -key 000102030405060708090a0b0c0d0e0f -mode steps   # show the per-module job flow
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aes"
	"repro/internal/app"
	"repro/internal/stats"
)

func main() {
	var (
		keyHex   = flag.String("key", "", "key as hex (16, 24 or 32 bytes)")
		mode     = flag.String("mode", "encrypt", "encrypt, decrypt, ctr or steps")
		inHex    = flag.String("in", "", "input as hex (defaults to reading hex from stdin); encrypt/decrypt need a multiple of 16 bytes, ctr accepts any length")
		nonceHex = flag.String("nonce", "0000000000000000", "8-byte nonce as hex for ctr mode")
	)
	flag.Parse()

	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		fatal(fmt.Errorf("invalid key hex: %w", err))
	}

	if *mode == "steps" {
		printSteps(key)
		return
	}

	input := strings.TrimSpace(*inHex)
	if input == "" {
		scanner := bufio.NewScanner(os.Stdin)
		var b strings.Builder
		for scanner.Scan() {
			b.WriteString(strings.TrimSpace(scanner.Text()))
		}
		input = b.String()
	}
	data, err := hex.DecodeString(input)
	if err != nil {
		fatal(fmt.Errorf("invalid input hex: %w", err))
	}

	cipher, err := aes.NewCipher(key)
	if err != nil {
		fatal(err)
	}
	var out []byte
	switch *mode {
	case "encrypt":
		out, err = cipher.EncryptECB(data)
	case "decrypt":
		out, err = cipher.DecryptECB(data)
	case "ctr":
		var nonce []byte
		if nonce, err = hex.DecodeString(*nonceHex); err == nil {
			out, err = aes.EncryptCTR(key, nonce, data)
		}
	default:
		err = fmt.Errorf("unknown mode %q (want encrypt, decrypt, ctr or steps)", *mode)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(hex.EncodeToString(out))
}

// printSteps shows how one encryption job decomposes into module operations,
// i.e. the data flow et_sim routes across the mesh.
func printSteps(key []byte) {
	size, err := aes.KeySizeForBytes(len(key))
	if err != nil {
		fatal(err)
	}
	steps, err := aes.EncryptionSteps(size)
	if err != nil {
		fatal(err)
	}
	t := stats.NewTable(fmt.Sprintf("%s job flow (%d operations)", size, len(steps)),
		"#", "operation", "module", "round")
	for i, s := range steps {
		module, err := app.ModuleForOp(s.Kind)
		if err != nil {
			fatal(err)
		}
		t.AddRow(i+1, s.Kind.String(), int(module), s.Round)
	}
	fmt.Print(t.Render())
	m1, m2, m3, err := aes.OperationCounts(size)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("operations per module: f1=%d f2=%d f3=%d\n", m1, m2, m3)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aescli:", err)
	os.Exit(1)
}
