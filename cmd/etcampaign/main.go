// Command etcampaign runs a Monte-Carlo replication campaign over a
// registered scenario: the scenario is simulated -replications times with
// per-replicate seeds drawn from a deterministic SplitMix64 stream, and the
// streaming aggregates (mean ± 95% confidence interval, standard deviation,
// min/max, P50/P90/P99) of every result metric are printed as a table or
// CSV. The campaign retains no per-replicate results, so replication counts
// in the tens of thousands are cheap in memory.
//
// Examples:
//
//	etcampaign -scenario random-mapping-sweep                  # 100 replicates
//	etcampaign -scenario degraded-fabric-mc -replications 1000 -workers 8
//	etcampaign -scenario paper-default -seed 7 -csv
//
// The output is a pure function of (scenario, -replications, -seed): worker
// count and batch size never change a digit.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

func main() {
	var (
		scenarioName  = flag.String("scenario", "", "registered scenario to replicate (see -list-scenarios)")
		listScenarios = flag.Bool("list-scenarios", false, "list the registered scenarios and exit")
		replications  = flag.Int("replications", 100, "number of independent replicates")
		seed          = flag.Uint64("seed", 1, "campaign base seed; replicate i draws its scenario seeds from a SplitMix64 stream at this base")
		workers       = flag.Int("workers", 0, "worker goroutines simulating replicates (0 = one per CPU, 1 = serial)")
		batch         = flag.Int("batch", 0, "replicates simulated per batch (0 = default); bounds memory only, never changes results")
		asCSV         = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	if *listScenarios {
		fmt.Print(scenario.Table().Render())
		return
	}
	if *scenarioName == "" {
		fatal(fmt.Errorf("-scenario is required; -list-scenarios shows the %d registered ones", len(scenario.Names())))
	}
	spec, ok := scenario.Lookup(*scenarioName)
	if !ok {
		fatal(fmt.Errorf("unknown scenario %q; -list-scenarios shows the %d registered ones",
			*scenarioName, len(scenario.Names())))
	}

	res, err := campaign.Run(campaign.Spec{
		Scenario:     spec,
		Replications: *replications,
		Seed:         *seed,
		BatchSize:    *batch,
	}, campaign.WithWorkers(*workers))
	if err != nil {
		fatal(err)
	}

	if *asCSV {
		fmt.Print(res.Table().CSV())
	} else {
		fmt.Print(res.Table().Render())
	}
	// Scenarios that verify AES payloads keep their hard-failure contract
	// under replication: any ciphertext mismatch exits non-zero.
	if err := res.MismatchError(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etcampaign:", err)
	os.Exit(1)
}
