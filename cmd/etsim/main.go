// Command etsim runs a single et_sim simulation and prints the resulting
// statistics. It is the command-line front end for the sim package.
//
// A run can be described either ad hoc with the individual flags, or by
// naming a registered scenario:
//
//	etsim -mesh 4 -alg EAR -battery thinfilm -controllers 1 -v
//	etsim -list-scenarios
//	etsim -scenario stress-burst
//	etsim -scenario smartshirt-verified -trace shirt.csv
//	etsim -scenario random-mapping-sweep -seed 7
//	etsim -scenario degraded-fabric-mc -replications 50
//	etsim -scenario paper-default -mapping explicit:1,2,3,1,3,1,3,2,3,1,3,3,2,3,2,1
//	etsim -scenario optimized-4x4 -mapping checkerboard
//	etsim -mesh 8 -controlplane sharded -shards 4 -staleness 8
//	etsim -scenario paper-large -controlplane sharded -shards 4
//
// With -trace, the combined battery/throughput time-series of the run is
// written to the given file as deterministic CSV. With -verify (or a
// scenario that verifies payloads), any ciphertext mismatch is a hard
// failure: etsim exits non-zero.
//
// The stochastic knobs of a named scenario can be re-drawn without editing
// the registry: -seed N overrides the scenario's MappingSeed and
// FailedLinkSeed for a single run, and -replications M (M > 1) runs a full
// Monte-Carlo campaign over the scenario — M seed-stream replicates folded
// into mean ± CI / quantile aggregates, exactly as cmd/etcampaign does.
// -mapping overrides the scenario's module placement by strategy name, or
// replays an exact placement with explicit:<assignment> (the form cmd/etopt
// prints for its optimized placements). -controlplane/-shards/-staleness
// select the controller architecture (see internal/controlplane), both ad hoc
// and as overrides on a named scenario. -recompute selects the controller's
// phase-2 strategy (incremental dirty-set repair, the default, or the full
// Floyd-Warshall pass); the two are byte-identical in every output, the knob
// exists for equivalence checks and timing comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"repro/internal/battery"
	"repro/internal/campaign"
	"repro/internal/controlplane"
	"repro/internal/faults"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		scenarioName  = flag.String("scenario", "", "run a registered scenario by name (see -list-scenarios); conflicts with the ad-hoc configuration flags, combines with -trace/-verify/-v/-max-cycles")
		listScenarios = flag.Bool("list-scenarios", false, "list the registered scenarios and exit")
		asJSON        = flag.Bool("json", false, "with -list-scenarios: emit the machine-readable registry (name, description, group, mesh, algorithm, canonical fingerprint) instead of tables")
		traceFile     = flag.String("trace", "", "write the per-frame battery/throughput time-series to this file as CSV")
		spansFile     = flag.String("spans", "", "record the flight recorder's frame/phase spans and write them to this file as Chrome trace-event JSON (open in chrome://tracing or Perfetto); the run's stdout is unaffected")
		meshSize      = flag.Int("mesh", 4, "square mesh size (4..8 in the paper)")
		algName       = flag.String("alg", "EAR", "routing algorithm: EAR or SDR")
		batteryKind   = flag.String("battery", "thinfilm", "node battery model: thinfilm or ideal")
		controllers   = flag.Int("controllers", 1, "number of central controllers")
		ctrlBattery   = flag.Bool("controller-battery", false, "give controllers finite thin-film batteries (Sec 7.3)")
		concurrent    = flag.Int("jobs", 1, "number of concurrent jobs in flight")
		earQ          = flag.Float64("ear-q", routing.DefaultEARParams().Q, "EAR battery-weighting base Q")
		verify        = flag.Bool("verify", false, "carry a real AES payload and verify every completed job (mismatches exit non-zero)")
		maxCycles     = flag.Int64("max-cycles", 0, "stop after this many cycles (0 = run to system death)")
		perNode       = flag.Bool("v", false, "print per-node statistics")
		mappingName   = flag.String("mapping", "", "with -scenario: override the scenario's module mapping (checkerboard, proportional, row-major, random or explicit:<assignment>)")
		planeName     = flag.String("controlplane", "", "control-plane architecture: centralized (default) or sharded; overrides the scenario's when combined with -scenario")
		shards        = flag.Int("shards", 0, "number of regional controllers under -controlplane sharded (0 = default)")
		staleness     = flag.Int("staleness", 0, "summary-exchange period in frames between regional controllers (0 = every frame)")
		recompute     = flag.String("recompute", "", "controller phase-2 strategy: incremental (default) or full Floyd-Warshall; outputs are byte-identical either way; overrides the scenario's when combined with -scenario")
		faultSpec     = flag.String("faults", "", "runtime fault schedule, e.g. 'link=0.05:8,crash=0.02:12,wear=150,kill=1@40:120,seed=7' (see internal/faults); overrides the scenario's when combined with -scenario")
		seed          = flag.Uint64("seed", 1, "with -scenario: override the scenario's MappingSeed/FailedLinkSeed (single run) or seed the campaign stream (-replications > 1)")
		replications  = flag.Int("replications", 1, "with -scenario: run this many seed-stream replicates as a Monte-Carlo campaign and print aggregate statistics")
	)
	flag.Parse()

	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	if *listScenarios {
		if *asJSON {
			// The same registry document etserve's GET /scenarios serves, so
			// scripts can discover scenarios and their cache keys without a
			// running daemon.
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(scenario.Infos()); err != nil {
				fatal(err)
			}
			return
		}
		for _, t := range scenario.GroupedTables() {
			fmt.Print(t.Render())
		}
		return
	}
	if *asJSON {
		fatal(fmt.Errorf("-json currently only applies to -list-scenarios"))
	}

	var cfg sim.Config
	if *scenarioName != "" {
		// A named scenario fully describes the configuration; silently
		// ignoring an explicitly passed ad-hoc flag would run something other
		// than what the user asked for, so it is an error instead. The
		// run-shaping flags (-trace, -verify, -v, -max-cycles) still combine.
		if set := conflictingFlags(); len(set) > 0 {
			fatal(fmt.Errorf("-scenario %s already determines the configuration; drop the conflicting flag(s) %v",
				*scenarioName, set))
		}
		spec, ok := scenario.Lookup(*scenarioName)
		if !ok {
			fatal(fmt.Errorf("unknown scenario %q; -list-scenarios shows the %d registered ones",
				*scenarioName, len(scenario.Names())))
		}
		// The run-shaping flags still apply on top of a named scenario.
		if *verify {
			spec.VerifyPayload = true
		}
		if *perNode {
			spec.CollectNodeStats = true
		}
		if *maxCycles > 0 {
			spec.MaxCycles = *maxCycles
		}
		if *mappingName != "" {
			if err := applyMappingOverride(&spec, *mappingName); err != nil {
				fatal(err)
			}
		}
		if err := applyControlPlaneOverride(&spec, *planeName, *shards, *staleness, *recompute); err != nil {
			fatal(err)
		}
		if *faultSpec != "" {
			spec.Faults = *faultSpec
		}
		if seedSet {
			// Re-draw the scenario's stochastic knobs without editing the
			// registry: one ad-hoc draw for a single run, the campaign base
			// seed when replicating.
			spec.MappingSeed = *seed
			spec.FailedLinkSeed = *seed
		}
		if *replications > 1 {
			// A campaign aggregates across replicates; the per-run outputs
			// (frame traces, per-node tables) have no aggregate form here.
			if *traceFile != "" || *perNode || *spansFile != "" {
				fatal(fmt.Errorf("-replications %d aggregates across runs; drop -trace/-spans/-v", *replications))
			}
			res, err := campaign.Run(campaign.Spec{
				Scenario:     spec,
				Replications: *replications,
				Seed:         *seed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Print(res.Table().Render())
			// A mismatch in any replicate is as hard a failure as in a
			// single run.
			if err := res.MismatchError(); err != nil {
				fatal(err)
			}
			return
		}
		strategy, err := spec.Strategy()
		if err != nil {
			fatal(err)
		}
		cfg, err = strategy.Config()
		if err != nil {
			fatal(err)
		}
	} else {
		// The seed-stream knobs only exist on declarative scenarios; the ad
		// hoc flags describe a deterministic configuration.
		if seedSet || *replications > 1 || *mappingName != "" {
			fatal(fmt.Errorf("-seed, -replications and -mapping require -scenario; register a scenario (or use cmd/etcampaign) to replicate it"))
		}
		var err error
		cfg, err = adHocConfig(*meshSize, *algName, *batteryKind, *earQ,
			*controllers, *ctrlBattery, *planeName, *shards, *staleness, *recompute,
			*faultSpec, *concurrent, *maxCycles, *verify, *perNode)
		if err != nil {
			fatal(err)
		}
	}

	var timeline *trace.Timeline
	if *traceFile != "" {
		timeline = &trace.Timeline{}
		cfg.Observers = append(cfg.Observers, timeline)
	}
	var spanLog *trace.Spans
	if *spansFile != "" {
		// The flight recorder implements sim.PhaseObserver, so attaching it
		// turns the engine's span clock on. It is observational only: stdout
		// stays byte-identical to a run without it (guarded in CI).
		spanLog = &trace.Spans{}
		cfg.Observers = append(cfg.Observers, spanLog)
	}

	s, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	wallStart := time.Now()
	res := s.Run()
	wall := time.Since(wallStart)

	fmt.Println(res.String())
	summary := stats.NewTable("", "metric", "value")
	summary.AddRow("jobs completed", res.JobsCompleted)
	summary.AddRow("jobs lost", res.JobsLost)
	summary.AddRow("lifetime [cycles]", res.LifetimeCycles)
	summary.AddRow("TDMA frames", res.Frames)
	summary.AddRow("routing recomputations", res.RoutingRecomputes)
	summary.AddRow("recompute split (full/incremental)", fmt.Sprintf("%d/%d", res.FullRecomputes, res.IncrementalRecomputes))
	if len(res.ShardRecomputes) > 0 {
		summary.AddRow("control plane", fmt.Sprintf("%s (%d shards)", res.ControlPlane, len(res.ShardRecomputes)))
		summary.AddRow("per-shard recomputations", fmt.Sprint(res.ShardRecomputes))
	}
	summary.AddRow("deadlock reports", res.DeadlockReports)
	summary.AddRow("dead nodes", res.DeadNodes)
	if res.FaultsInjected > 0 || res.FaultsRecovered > 0 {
		summary.AddRow("faults injected / recovered", fmt.Sprintf("%d/%d", res.FaultsInjected, res.FaultsRecovered))
		summary.AddRow("links broken by wear", res.LinksBroken)
	}
	if res.RegionFailovers > 0 {
		summary.AddRow("region failovers", res.RegionFailovers)
		summary.AddRow("peak adopted nodes", res.PeakAdoptedNodes)
	}
	summary.AddRow("computation energy [pJ]", res.Energy.ComputationPJ)
	summary.AddRow("communication energy [pJ]", res.Energy.CommunicationPJ)
	summary.AddRow("control upload energy [pJ]", res.Energy.ControlUploadPJ)
	summary.AddRow("control download energy [pJ]", res.Energy.ControlDownloadPJ)
	summary.AddRow("controller energy [pJ]", res.Energy.ControllerPJ)
	summary.AddRow("wasted (stranded) energy [pJ]", res.Energy.WastedPJ)
	summary.AddRow("control overhead", fmt.Sprintf("%.1f%%", 100*res.Energy.ControlOverheadFraction()))
	if res.PayloadJobsVerified+res.PayloadMismatches > 0 {
		summary.AddRow("AES payloads verified", res.PayloadJobsVerified)
		summary.AddRow("AES payload mismatches", res.PayloadMismatches)
	}
	fmt.Print(summary.Render())

	if *perNode {
		nodes := stats.NewTable("per-node statistics", "node", "module", "ops", "relayed", "comp pJ", "comm pJ", "ctrl pJ", "dead")
		for _, n := range res.Nodes {
			nodes.AddRow(int(n.Node), n.Module, n.Operations, n.PacketsRelayed, n.ComputationPJ, n.CommunicationPJ, n.ControlPJ, n.Dead)
		}
		fmt.Print(nodes.Render())
	}

	if timeline != nil {
		if err := os.WriteFile(*traceFile, []byte(timeline.CSV()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d frames written to %s\n", len(timeline.Rows()), *traceFile)
	}

	if spanLog != nil {
		if err := spanLog.WriteFile(*spansFile); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "spans: %d recorded, written to %s\n", spanLog.Len(), *spansFile)
	}

	// Wall-clock timing goes to stderr: it differs run to run, and stdout is
	// byte-diffed by the determinism guards.
	framesPerSec := 0.0
	if wall > 0 {
		framesPerSec = float64(res.Frames) / wall.Seconds()
	}
	fmt.Fprintf(os.Stderr, "etsim: %d frames simulated in %s (%.0f frames/s)\n",
		res.Frames, wall.Round(time.Microsecond), framesPerSec)

	if res.PayloadMismatches > 0 {
		fatal(fmt.Errorf("%d of %d verified payloads mismatched the reference cipher",
			res.PayloadMismatches, res.PayloadJobsVerified+res.PayloadMismatches))
	}
}

// applyMappingOverride rewrites the spec's mapping fields from a -mapping
// value: one of the registered strategy names, or explicit:<assignment> with
// the assignment in mapping.Explicit's comma-separated form (the form etopt
// prints). A typo lists the valid names instead of running something other
// than what the user asked for.
func applyMappingOverride(spec *scenario.Spec, value string) error {
	if assignment, ok := strings.CutPrefix(value, "explicit:"); ok {
		spec.Mapping = scenario.MappingExplicit
		spec.Assignment = assignment
		return nil
	}
	// The named strategies are the registry's mapping names minus explicit,
	// which is only reachable through the explicit:<assignment> form above.
	var named []string
	for _, name := range scenario.MappingNames() {
		if name != scenario.MappingExplicit {
			named = append(named, name)
		}
	}
	canonical := value
	if value == "rowmajor" {
		canonical = scenario.MappingRowMajor
	}
	if !slices.Contains(named, canonical) {
		return fmt.Errorf("unknown mapping %q (want %s, or explicit:<assignment> as printed by etopt)",
			value, strings.Join(named, ", "))
	}
	spec.Mapping = canonical
	// A named strategy replaces whatever explicit assignment the scenario
	// carried.
	spec.Assignment = ""
	return nil
}

// applyControlPlaneOverride rewrites the spec's control-plane fields from the
// -controlplane/-shards/-staleness flags. A -controlplane typo lists the valid
// names instead of running something other than what the user asked for;
// inconsistent combinations (e.g. -shards with the centralized plane) are
// rejected by the spec's eager validation in Strategy.
func applyControlPlaneOverride(spec *scenario.Spec, plane string, shards, staleness int, recompute string) error {
	if plane != "" {
		kind, err := controlplane.ParseKind(plane)
		if err != nil {
			return err
		}
		spec.ControlPlane = string(kind)
		// Overriding the architecture resets the sharding knobs to the new
		// plane's defaults; the flags below re-set them explicitly.
		spec.Shards = 0
		spec.StalenessFrames = 0
	}
	if shards > 0 {
		spec.Shards = shards
	}
	if staleness > 0 {
		spec.StalenessFrames = staleness
	}
	if recompute != "" {
		if _, err := controlplane.ParseRecompute(recompute); err != nil {
			return err
		}
		spec.Recompute = recompute
	}
	return nil
}

// conflictingFlags returns the names of the explicitly set flags that
// describe a configuration of their own and therefore cannot be combined
// with -scenario.
func conflictingFlags() []string {
	adHoc := map[string]bool{
		"mesh": true, "alg": true, "battery": true, "controllers": true,
		"controller-battery": true, "jobs": true, "ear-q": true,
	}
	var set []string
	flag.Visit(func(f *flag.Flag) {
		if adHoc[f.Name] {
			set = append(set, "-"+f.Name)
		}
	})
	return set
}

// adHocConfig builds a simulator configuration from the individual flags,
// preserving etsim's original flag-driven interface.
func adHocConfig(meshSize int, algName, batteryKind string, earQ float64,
	controllers int, ctrlBattery bool, plane string, shards, staleness int,
	recompute, faultSpec string, concurrent int, maxCycles int64, verify, perNode bool) (sim.Config, error) {
	cfg, err := sim.Default(meshSize)
	if err != nil {
		return sim.Config{}, err
	}
	switch algName {
	case "EAR", "ear":
		params := routing.DefaultEARParams()
		params.Q = earQ
		cfg.Algorithm = routing.EAR{Params: params}
	case "SDR", "sdr":
		cfg.Algorithm = routing.SDR{}
	default:
		return sim.Config{}, fmt.Errorf("unknown algorithm %q (want EAR or SDR)", algName)
	}
	switch batteryKind {
	case "thinfilm":
		cfg.NodeBattery = battery.DefaultThinFilmFactory()
	case "ideal":
		cfg.NodeBattery = battery.IdealFactory(battery.DefaultNominalPJ)
	default:
		return sim.Config{}, fmt.Errorf("unknown battery model %q (want thinfilm or ideal)", batteryKind)
	}
	cfg.Controllers = controllers
	if ctrlBattery {
		cfg.ControllerBattery = battery.DefaultThinFilmFactory()
	}
	kind, err := controlplane.ParseKind(plane)
	if err != nil {
		return sim.Config{}, err
	}
	if _, err := controlplane.ParseRecompute(recompute); err != nil {
		return sim.Config{}, err
	}
	cfg.Control = controlplane.Config{Kind: kind, Shards: shards, StalenessFrames: staleness, Recompute: recompute}
	if faultSpec != "" {
		fsp, err := faults.ParseSpec(faultSpec)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Faults = fsp
	}
	cfg.ConcurrentJobs = concurrent
	cfg.MaxCycles = maxCycles
	cfg.CollectNodeStats = perNode
	if verify {
		cfg.Key = scenario.PaperKey()
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etsim:", err)
	os.Exit(1)
}
