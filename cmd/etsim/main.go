// Command etsim runs a single et_sim simulation and prints the resulting
// statistics. It is the command-line front end for the sim package.
//
// Example:
//
//	etsim -mesh 4 -alg EAR -battery thinfilm -controllers 1 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/battery"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		meshSize    = flag.Int("mesh", 4, "square mesh size (4..8 in the paper)")
		algName     = flag.String("alg", "EAR", "routing algorithm: EAR or SDR")
		batteryKind = flag.String("battery", "thinfilm", "node battery model: thinfilm or ideal")
		controllers = flag.Int("controllers", 1, "number of central controllers")
		ctrlBattery = flag.Bool("controller-battery", false, "give controllers finite thin-film batteries (Sec 7.3)")
		concurrent  = flag.Int("jobs", 1, "number of concurrent jobs in flight")
		earQ        = flag.Float64("ear-q", routing.DefaultEARParams().Q, "EAR battery-weighting base Q")
		verify      = flag.Bool("verify", false, "carry a real AES payload and verify every completed job")
		maxCycles   = flag.Int64("max-cycles", 0, "stop after this many cycles (0 = run to system death)")
		perNode     = flag.Bool("v", false, "print per-node statistics")
	)
	flag.Parse()

	cfg, err := sim.Default(*meshSize)
	if err != nil {
		fatal(err)
	}
	switch *algName {
	case "EAR", "ear":
		params := routing.DefaultEARParams()
		params.Q = *earQ
		cfg.Algorithm = routing.EAR{Params: params}
	case "SDR", "sdr":
		cfg.Algorithm = routing.SDR{}
	default:
		fatal(fmt.Errorf("unknown algorithm %q (want EAR or SDR)", *algName))
	}
	switch *batteryKind {
	case "thinfilm":
		cfg.NodeBattery = battery.DefaultThinFilmFactory()
	case "ideal":
		cfg.NodeBattery = battery.IdealFactory(battery.DefaultNominalPJ)
	default:
		fatal(fmt.Errorf("unknown battery model %q (want thinfilm or ideal)", *batteryKind))
	}
	cfg.Controllers = *controllers
	if *ctrlBattery {
		cfg.ControllerBattery = battery.DefaultThinFilmFactory()
	}
	cfg.ConcurrentJobs = *concurrent
	cfg.MaxCycles = *maxCycles
	cfg.CollectNodeStats = *perNode
	if *verify {
		cfg.Key = []byte("\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c")
	}

	s, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	res := s.Run()

	fmt.Println(res.String())
	summary := stats.NewTable("", "metric", "value")
	summary.AddRow("jobs completed", res.JobsCompleted)
	summary.AddRow("jobs lost", res.JobsLost)
	summary.AddRow("lifetime [cycles]", res.LifetimeCycles)
	summary.AddRow("TDMA frames", res.Frames)
	summary.AddRow("routing recomputations", res.RoutingRecomputes)
	summary.AddRow("deadlock reports", res.DeadlockReports)
	summary.AddRow("dead nodes", res.DeadNodes)
	summary.AddRow("computation energy [pJ]", res.Energy.ComputationPJ)
	summary.AddRow("communication energy [pJ]", res.Energy.CommunicationPJ)
	summary.AddRow("control upload energy [pJ]", res.Energy.ControlUploadPJ)
	summary.AddRow("control download energy [pJ]", res.Energy.ControlDownloadPJ)
	summary.AddRow("controller energy [pJ]", res.Energy.ControllerPJ)
	summary.AddRow("wasted (stranded) energy [pJ]", res.Energy.WastedPJ)
	summary.AddRow("control overhead", fmt.Sprintf("%.1f%%", 100*res.Energy.ControlOverheadFraction()))
	if res.PayloadJobsVerified+res.PayloadMismatches > 0 {
		summary.AddRow("AES payloads verified", res.PayloadJobsVerified)
		summary.AddRow("AES payload mismatches", res.PayloadMismatches)
	}
	fmt.Print(summary.Render())

	if *perNode {
		nodes := stats.NewTable("per-node statistics", "node", "module", "ops", "relayed", "comp pJ", "comm pJ", "ctrl pJ", "dead")
		for _, n := range res.Nodes {
			nodes.AddRow(int(n.Node), n.Module, n.Operations, n.PacketsRelayed, n.ComputationPJ, n.CommunicationPJ, n.ControlPJ, n.Dead)
		}
		fmt.Print(nodes.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etsim:", err)
	os.Exit(1)
}
